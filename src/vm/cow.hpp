#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "vm/arena.hpp"

namespace concord::vm {

/// Copy-on-write backing stores for the boosted collections.
///
/// Every collection keeps its committed state behind one of these value
/// types. Copying one is the *fork* operation: it shares the underlying
/// pages through shared_ptr handles in O(1), and the first mutation after
/// a fork detaches only what it touches (ensure-unique on write). That is
/// what makes `World::fork()` an O(contracts) operation and a block-
/// boundary `WorldSnapshot` O(dirty set since the last boundary) instead
/// of O(state) — the frozen side of a fork keeps reading the shared pages
/// while the mutable side peels off private copies entry by entry.
///
/// Memory layer: every allocation these types make — page payloads and
/// their control blocks, entry buffers, directories — is routed through
/// an optional World-scoped PageArena (see arena.hpp). The arena handle
/// travels with the value on copy/fork, so an entire World lineage
/// (snapshots, ring entries, validator replicas) recycles pages from one
/// pool; a null handle (the default) reproduces the plain-heap baseline
/// byte for byte. set_arena() only steers *future* allocations — already
/// shared pages keep their original backing, which is what lets a lineage
/// adopt an arena mid-life without touching shared state.
///
/// Concurrency contract (matches the collections' existing one): all
/// access to a *given* CowPages/CowChunks/CowBox instance must be
/// externally serialized (the collections hold their short physical mutex
/// across every call). Distinct instances that *share pages* may be used
/// from different threads freely: shared pages are never mutated in
/// place — a writer first proves sole ownership (sole_owner below) or
/// copies. The uniqueness check is sound because gaining a new reference
/// to a page requires copying a handle that owns it, which the owning
/// instance's external lock serializes; a concurrent *release* elsewhere
/// can only make a page spuriously look shared, forcing a harmless copy.
/// The arena slots freed by that releasing thread re-enter circulation
/// through PageArena's internal lock, so recycled memory is equally
/// ordered.

namespace cow_detail {

/// splitmix64 finalizer (local copy — cow.hpp stays dependency-light).
/// Page indices must stay well-distributed even when the caller's hash is
/// only mixed in the high bits.
[[nodiscard]] constexpr std::uint64_t remix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// True when `handle` is the only owner, with the memory ordering that
/// makes in-place mutation after the check sound. use_count() loads
/// relaxed, so observing 1 alone does not synchronize with the thread
/// that just *released* the other reference — its reads of the page
/// could still race with our upcoming writes (the reason
/// shared_ptr::unique() was deprecated). The acquire fence pairs with
/// the release semantics of that final refcount decrement, ordering the
/// releaser's accesses before ours. Arena-backed pages use the standard
/// shared_ptr control block (allocate_shared), so this protocol is
/// identical with the arena on or off.
template <typename T>
[[nodiscard]] inline bool sole_owner(const std::shared_ptr<T>& handle) noexcept {
  if (handle.use_count() != 1) return false;
  std::atomic_thread_fence(std::memory_order_acquire);
  return true;
}

}  // namespace cow_detail

/// A paged COW hash table: the map form all three boosted maps build on.
///
/// Two-level structure, copy-on-write at both levels:
///   directory (shared_ptr) ──▶ [ page*, page*, … ]  each page (shared_ptr)
///                                                    ──▶ small vector of
///                                                        (key, value)
/// Copying a CowPages copies one shared_ptr. The first write after a fork
/// copies the directory (a vector of page handles, ~size/kTargetFill
/// entries) and the one touched page (≤ ~2·kTargetFill entries); every
/// further write to an already-private page is as cheap as before the
/// fork. Pages are small unsorted vectors searched linearly — at the
/// target fill that beats a per-page hash table on both copy cost and
/// memory, and iteration order never matters because the state hasher
/// sorts by encoded key.
template <typename K, typename V, typename Hash>
class CowPages {
 public:
  CowPages() : CowPages(ArenaHandle{}) {}

  /// All allocations (pages, buffers, directories) go through `arena`;
  /// null = global heap.
  explicit CowPages(ArenaHandle arena) : arena_(std::move(arena)) {
    dir_ = make_dir();
    dir_->push_back(make_page());
  }

  /// Copying IS forking: O(1), shares the directory and every page (and
  /// the arena they live in).
  CowPages(const CowPages&) = default;
  CowPages& operator=(const CowPages&) = default;
  CowPages(CowPages&&) noexcept = default;
  CowPages& operator=(CowPages&&) noexcept = default;

  /// Named fork for call-site readability.
  [[nodiscard]] CowPages fork() const { return *this; }

  /// Routes future allocations through `arena` (existing pages keep the
  /// backing they were allocated from). Call while externally
  /// serialized, like every other mutation — and only before the first
  /// arena-backed page exists (World binds at construction): the handle
  /// stored here is what keeps the arena alive for this collection's
  /// pages, so swapping it later could orphan them.
  void set_arena(ArenaHandle arena) { arena_ = std::move(arena); }

  [[nodiscard]] const ArenaHandle& arena() const noexcept { return arena_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of pages in the directory (diagnostic; forks copy this many
  /// handles on their first post-fork write).
  [[nodiscard]] std::size_t page_count() const noexcept { return dir_->size(); }

  /// Pre-sizes the directory for `expected_entries` total entries, so a
  /// large genesis seed (the million-account workloads) runs without the
  /// doubling walk — each doubling is O(size) and reallocates every page,
  /// which is exactly the repeated-rehash traffic reserve() removes.
  /// Never shrinks. Safe at any fill (entries are rehashed once); like
  /// every mutation it detaches from any fork sharing the directory.
  void reserve(std::size_t expected_entries) {
    std::size_t target = 1;
    while (target * kTargetFill < expected_entries &&
           target < (std::size_t{1} << 62)) {
      target <<= 1;
    }
    if (target > dir_->size()) rehash_to(target);
  }

  [[nodiscard]] const V* find(const K& key) const {
    const Page& page = *(*dir_)[page_index(key)];
    for (const auto& entry : page) {
      if (entry.first == key) return &entry.second;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(const K& key) const { return find(key) != nullptr; }

  void insert_or_assign(const K& key, V value) {
    Page& page = mutable_page_for(key);
    for (auto& entry : page) {
      if (entry.first == key) {
        entry.second = std::move(value);
        return;
      }
    }
    if (grow_if_needed()) {
      // The directory was rebuilt; the old page reference is stale.
      mutable_page_for(key).emplace_back(key, std::move(value));
    } else {
      page.emplace_back(key, std::move(value));
    }
    ++size_;
  }

  /// Returns whether a binding existed.
  bool erase(const K& key) {
    Page& page = mutable_page_for(key);
    for (auto& entry : page) {
      if (entry.first == key) {
        // Swap-remove; order within a page is free (the hasher sorts).
        if (&entry != &page.back()) entry = std::move(page.back());
        page.pop_back();
        --size_;
        return true;
      }
    }
    return false;
  }

  /// The read-modify-write primitive behind BoostedMap::update: detaches
  /// the page, binds `fallback` when the key is absent, and returns a
  /// mutable reference valid until the next call on this instance.
  /// `inserted` (optional) reports whether the fallback was used.
  V& get_or_emplace(const K& key, V fallback, bool* inserted = nullptr) {
    Page& page = mutable_page_for(key);
    for (auto& entry : page) {
      if (entry.first == key) {
        if (inserted != nullptr) *inserted = false;
        return entry.second;
      }
    }
    if (inserted != nullptr) *inserted = true;
    ++size_;
    if (grow_if_needed()) {
      Page& fresh = mutable_page_for(key);
      return fresh.emplace_back(key, std::move(fallback)).second;
    }
    return page.emplace_back(key, std::move(fallback)).second;
  }

  /// Visits every entry as fn(const K&, const V&); unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& page : *dir_) {
      for (const auto& entry : *page) fn(entry.first, entry.second);
    }
  }

 private:
  using Entry = std::pair<K, V>;
  using Page = std::vector<Entry, ArenaAllocator<Entry>>;
  using Dir = std::vector<std::shared_ptr<Page>, ArenaAllocator<std::shared_ptr<Page>>>;

  /// Average entries per page before the directory doubles. Small enough
  /// that a post-fork detach copies a handful of entries; large enough
  /// that the directory (copied wholesale on the first post-fork write)
  /// stays a fraction of the entry count.
  static constexpr std::size_t kTargetFill = 8;

  [[nodiscard]] std::shared_ptr<Page> make_page() const {
    return arena_make_shared<Page>(arena_, ArenaAllocator<Entry>(arena_));
  }

  [[nodiscard]] std::shared_ptr<Page> copy_page(const Page& src) const {
    return arena_make_shared<Page>(arena_, src, ArenaAllocator<Entry>(arena_));
  }

  [[nodiscard]] std::shared_ptr<Dir> make_dir() const {
    return arena_make_shared<Dir>(arena_, ArenaAllocator<std::shared_ptr<Page>>(arena_));
  }

  [[nodiscard]] std::shared_ptr<Dir> copy_dir(const Dir& src) const {
    return arena_make_shared<Dir>(arena_, src, ArenaAllocator<std::shared_ptr<Page>>(arena_));
  }

  [[nodiscard]] std::size_t page_index(const K& key) const noexcept {
    return static_cast<std::size_t>(cow_detail::remix64(Hash{}(key))) & (dir_->size() - 1);
  }

  /// Ensure-unique on write, both levels: private directory, then a
  /// private copy of the page the key lands in.
  Page& mutable_page_for(const K& key) {
    if (!cow_detail::sole_owner(dir_)) dir_ = copy_dir(*dir_);
    auto& slot = (*dir_)[page_index(key)];
    if (!cow_detail::sole_owner(slot)) slot = copy_page(*slot);
    return *slot;
  }

  /// Doubles the directory when the average fill exceeds the target.
  /// Returns true when pages moved (references into them are stale).
  /// O(size) when it fires, amortized O(1) per insert — and it only runs
  /// on a *growing* lineage, never as part of fork or snapshot.
  bool grow_if_needed() {
    if (size_ < dir_->size() * kTargetFill) return false;
    rehash_to(dir_->size() * 2);
    return true;
  }

  /// Rebuilds the directory at `new_pages` slots (a power of two),
  /// redistributing every entry. Shared by the doubling path and
  /// reserve().
  void rehash_to(std::size_t new_pages) {
    auto grown = make_dir();
    grown->reserve(new_pages);
    for (std::size_t i = 0; i < new_pages; ++i) {
      grown->push_back(make_page());
    }
    for (const auto& page : *dir_) {
      for (const auto& entry : *page) {
        const std::size_t idx =
            static_cast<std::size_t>(cow_detail::remix64(Hash{}(entry.first))) & (new_pages - 1);
        (*grown)[idx]->push_back(entry);
      }
    }
    dir_ = std::move(grown);
  }

  /// Owns the arena on behalf of every page below. Must stay declared
  /// before dir_: ArenaAllocator is non-owning, so the pages have to be
  /// destroyed (and their memory returned) before the handle drops.
  ArenaHandle arena_;
  std::shared_ptr<Dir> dir_;
  std::size_t size_ = 0;
};

/// A chunked COW vector: BoostedArray's backing store. Same two-level
/// scheme as CowPages with fixed-capacity chunks, so set/push/pop after a
/// fork detach one chunk (≤ kChunkCapacity elements), not the array.
template <typename T>
class CowChunks {
 public:
  static constexpr std::size_t kChunkCapacity = 64;

  CowChunks() : CowChunks(ArenaHandle{}) {}

  explicit CowChunks(ArenaHandle arena) : arena_(std::move(arena)) { dir_ = make_dir(); }

  CowChunks(const CowChunks&) = default;
  CowChunks& operator=(const CowChunks&) = default;
  CowChunks(CowChunks&&) noexcept = default;
  CowChunks& operator=(CowChunks&&) noexcept = default;

  [[nodiscard]] CowChunks fork() const { return *this; }

  /// See CowPages::set_arena.
  void set_arena(ArenaHandle arena) { arena_ = std::move(arena); }

  [[nodiscard]] const ArenaHandle& arena() const noexcept { return arena_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bounds-checked, like std::vector::at (the callers' safety nets —
  /// BoostedArray's revert-on-out-of-range contract — lean on it).
  [[nodiscard]] const T& at(std::size_t index) const {
    if (index >= size_) throw std::out_of_range("CowChunks::at");
    return (*(*dir_)[index / kChunkCapacity])[index % kChunkCapacity];
  }

  [[nodiscard]] const T& back() const { return at(size_ - 1); }

  void set(std::size_t index, T value) {
    if (index >= size_) throw std::out_of_range("CowChunks::set");
    mutable_chunk(index / kChunkCapacity)[index % kChunkCapacity] = std::move(value);
  }

  /// In-place read-modify-write of one element (commutative adds).
  template <typename Fn>
  void mutate(std::size_t index, Fn&& fn) {
    if (index >= size_) throw std::out_of_range("CowChunks::mutate");
    fn(mutable_chunk(index / kChunkCapacity)[index % kChunkCapacity]);
  }

  void push_back(T value) {
    ensure_unique_dir();
    if (size_ % kChunkCapacity == 0) {
      auto chunk = make_chunk();
      chunk->reserve(kChunkCapacity);
      dir_->push_back(std::move(chunk));
    }
    mutable_chunk(size_ / kChunkCapacity).push_back(std::move(value));
    ++size_;
  }

  /// Precondition: !empty().
  void pop_back() {
    ensure_unique_dir();
    const std::size_t last = size_ - 1;
    mutable_chunk(last / kChunkCapacity).pop_back();
    if (last % kChunkCapacity == 0) dir_->pop_back();  // Chunk emptied out.
    --size_;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& chunk : *dir_) {
      for (const T& value : *chunk) fn(value);
    }
  }

 private:
  using Chunk = std::vector<T, ArenaAllocator<T>>;
  using Dir = std::vector<std::shared_ptr<Chunk>, ArenaAllocator<std::shared_ptr<Chunk>>>;

  [[nodiscard]] std::shared_ptr<Chunk> make_chunk() const {
    return arena_make_shared<Chunk>(arena_, ArenaAllocator<T>(arena_));
  }

  [[nodiscard]] std::shared_ptr<Dir> make_dir() const {
    return arena_make_shared<Dir>(arena_, ArenaAllocator<std::shared_ptr<Chunk>>(arena_));
  }

  void ensure_unique_dir() {
    if (!cow_detail::sole_owner(dir_)) {
      dir_ = arena_make_shared<Dir>(arena_, *dir_, ArenaAllocator<std::shared_ptr<Chunk>>(arena_));
    }
  }

  Chunk& mutable_chunk(std::size_t chunk_index) {
    ensure_unique_dir();
    auto& slot = (*dir_)[chunk_index];
    if (!cow_detail::sole_owner(slot)) {
      auto copy = make_chunk();
      copy->reserve(kChunkCapacity);
      copy->assign(slot->begin(), slot->end());
      slot = std::move(copy);
    }
    return *slot;
  }

  ArenaHandle arena_;  ///< Before dir_ — pages must die first (see CowPages).
  std::shared_ptr<Dir> dir_;
  std::size_t size_ = 0;
};

/// A single COW value: BoostedScalar's backing store. One level — the
/// value itself is the page.
template <typename T>
class CowBox {
 public:
  explicit CowBox(T initial) : value_(std::make_shared<T>(std::move(initial))) {}

  CowBox(const CowBox&) = default;
  CowBox& operator=(const CowBox&) = default;
  CowBox(CowBox&&) noexcept = default;
  CowBox& operator=(CowBox&&) noexcept = default;

  [[nodiscard]] CowBox fork() const { return *this; }

  /// See CowPages::set_arena: future detaches allocate from `arena`.
  void set_arena(ArenaHandle arena) { arena_ = std::move(arena); }

  [[nodiscard]] const T& get() const noexcept { return *value_; }

  /// Ensure-unique, then expose the private value. Valid until the next
  /// fork of this instance.
  [[nodiscard]] T& mutable_ref() {
    if (!cow_detail::sole_owner(value_)) value_ = arena_make_shared<T>(arena_, *value_);
    return *value_;
  }

  void set(T value) { mutable_ref() = std::move(value); }

 private:
  ArenaHandle arena_;  ///< Before value_ — the box must die first (see CowPages).
  std::shared_ptr<T> value_;
};

}  // namespace concord::vm
