#pragma once

#include <string_view>

#include "vm/contract.hpp"
#include "vm/exec_context.hpp"
#include "vm/msg.hpp"

namespace concord::vm {

/// Deterministic outcome of one transaction. Part of the block's meaning:
/// a validator must reproduce the exact status vector, so status mismatch
/// is a reject reason alongside state-root mismatch.
enum class TxStatus : std::uint8_t {
  kSuccess = 0,
  kReverted = 1,  ///< Contract executed `throw`; effects undone.
  kOutOfGas = 2,  ///< Gas limit exhausted; effects undone.
};

[[nodiscard]] constexpr std::string_view to_string(TxStatus s) noexcept {
  switch (s) {
    case TxStatus::kSuccess: return "success";
    case TxStatus::kReverted: return "reverted";
    case TxStatus::kOutOfGas: return "out-of-gas";
  }
  return "?";
}

/// Executes one outermost contract call within `ctx` and maps contract
/// failures to a status.
///
/// In serial and replay modes a failure rolls the attempt's effects back
/// before returning (and success discards the undo log). In speculative
/// mode rollback is deliberately NOT performed here: the miner finishes
/// the attempt via SpeculativeAction::commit(reverted) so that reverted
/// transactions still publish their lock profiles (see LockProfile).
/// stm::ConflictAbort always propagates — it is not a transaction outcome.
[[nodiscard]] TxStatus run_call(Contract& contract, const Call& call, const MsgContext& msg,
                                ExecContext& ctx);

}  // namespace concord::vm
