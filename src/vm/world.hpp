#pragma once

#include <memory>

#include "util/sha256.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/contract.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// The complete on-chain state a block executes against: the deployed
/// contracts plus the native account balances ("each block also includes
/// an explicit state capturing the cumulative effect of transactions in
/// prior blocks" — paper §2).
///
/// Balances are a BoostedCounterMap, so plain transfers between distinct
/// accounts commute and mine in parallel, while reads of a balance
/// serialize against payments touching it — the same fine-grained
/// semantics the contracts get.
class World {
 public:
  World() : balances_(stm::fnv1a64("__world/balances")) {}

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] ContractRegistry& contracts() noexcept { return contracts_; }
  [[nodiscard]] const ContractRegistry& contracts() const noexcept { return contracts_; }

  [[nodiscard]] BoostedCounterMap<Address>& balances() noexcept { return balances_; }
  [[nodiscard]] const BoostedCounterMap<Address>& balances() const noexcept { return balances_; }

  /// Transfers `amount` between accounts as two commutative increments.
  /// Overdraft protection is the caller's business (contracts check their
  /// own invariants; checking here would force a READ and serialize all
  /// payments from the same account — the classic boosting trade-off).
  void transfer(ExecContext& ctx, const Address& from, const Address& to, Amount amount) {
    balances_.add(ctx, from, -amount);
    balances_.add(ctx, to, amount);
  }

  /// Canonical digest of all persistent state; the block's state root.
  [[nodiscard]] util::Hash256 state_root() const {
    StateHasher hasher;
    contracts_.hash_state(hasher);
    balances_.hash_state(hasher, "__world/balances");
    return hasher.finish();
  }

  /// Deep-copies the whole world — every contract and the native
  /// balances — into an independent replica with an identical
  /// state_root() by construction. Call between blocks only (no
  /// speculative action may be live). This is how one genesis state
  /// serves both pipeline stages: the miner mutates the original while
  /// the validator replays against a clone, with no dual-construction
  /// footgun to keep in sync.
  [[nodiscard]] std::unique_ptr<World> clone() const {
    auto copy = std::make_unique<World>();
    copy->contracts_ = contracts_.clone();
    copy->balances_.clone_state_from(balances_);
    return copy;
  }

 private:
  ContractRegistry contracts_;
  BoostedCounterMap<Address> balances_;
};

/// An immutable world state frozen at a block boundary: a clone taken at
/// construction plus its state root. Copying the handle shares the frozen
/// clone (cheap); materialize() mints a fresh mutable replica of it.
///
/// This is the seam deeper pipelining builds on: a depth-k validation
/// ring keeps one snapshot per in-flight block to re-derive a validator
/// world after a re-org, and mid-block read serving answers queries from
/// the last snapshot while the miner's world is in flux.
class WorldSnapshot {
 public:
  /// An empty handle (valid() == false). Lets snapshot slots — a ring
  /// entry whose pipeline runs with recovery disabled, a moved-from
  /// handle — exist without a frozen world behind them.
  WorldSnapshot() = default;

  /// Freezes `world`'s current state. The original is untouched and may
  /// keep advancing; the snapshot's root never changes.
  explicit WorldSnapshot(const World& world)
      : frozen_(world.clone()), root_(frozen_->state_root()) {}

  /// False for a default-constructed (or moved-from) handle. world() and
  /// materialize() require valid().
  [[nodiscard]] bool valid() const noexcept { return frozen_ != nullptr; }

  /// How many handles share this frozen state (0 for an empty handle) —
  /// the ring-occupancy diagnostic: a depth-k pipeline holds at most one
  /// live boundary per in-flight block.
  [[nodiscard]] long use_count() const noexcept { return frozen_.use_count(); }

  /// The frozen state, for read-only serving.
  [[nodiscard]] const World& world() const noexcept { return *frozen_; }

  /// The state root at the moment the snapshot was taken (zero hash for
  /// an empty handle).
  [[nodiscard]] const util::Hash256& state_root() const noexcept { return root_; }

  /// A fresh mutable world replica of the frozen state — how a validator
  /// (or a re-org recovery path) gets a private copy to execute against.
  /// Concurrent materialize() calls on handles sharing one frozen world
  /// are safe: cloning only reads the immutable state.
  [[nodiscard]] std::unique_ptr<World> materialize() const { return frozen_->clone(); }

 private:
  std::shared_ptr<const World> frozen_;
  util::Hash256 root_;
};

}  // namespace concord::vm
