#pragma once

#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/sha256.hpp"
#include "vm/arena.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/contract.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// The complete on-chain state a block executes against: the deployed
/// contracts plus the native account balances ("each block also includes
/// an explicit state capturing the cumulative effect of transactions in
/// prior blocks" — paper §2).
///
/// Balances are a BoostedCounterMap, so plain transfers between distinct
/// accounts commute and mine in parallel, while reads of a balance
/// serialize against payments touching it — the same fine-grained
/// semantics the contracts get.
///
/// Memory layer: every World owns an ArenaHandle that its COW state
/// (balances + every contract field deployed through contracts().add)
/// allocates from, and fork() shares it — one PageArena serves an entire
/// World lineage, so the pages a retiring snapshot frees are recycled by
/// the miner's next detach instead of bouncing through the global heap.
/// The default constructor turns the arena on; constructing with a null
/// handle reproduces the plain-heap baseline (bench_state_scale's
/// ablation). State roots are byte-identical either way — the arena
/// changes where pages live, never what they contain.
class World {
 public:
  World() : World(make_arena()) {}

  /// `arena` backs all COW state of this world and its forks; null
  /// disables pooling (global-heap baseline).
  explicit World(ArenaHandle arena)
      : arena_(std::move(arena)), balances_(stm::fnv1a64("__world/balances")) {
    contracts_.set_arena(arena_);
    balances_.set_arena(arena_);
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] ContractRegistry& contracts() noexcept { return contracts_; }
  [[nodiscard]] const ContractRegistry& contracts() const noexcept { return contracts_; }

  [[nodiscard]] BoostedCounterMap<Address>& balances() noexcept { return balances_; }
  [[nodiscard]] const BoostedCounterMap<Address>& balances() const noexcept { return balances_; }

  /// Transfers `amount` between accounts as two commutative increments.
  /// Overdraft protection is the caller's business (contracts check their
  /// own invariants; checking here would force a READ and serialize all
  /// payments from the same account — the classic boosting trade-off).
  void transfer(ExecContext& ctx, const Address& from, const Address& to, Amount amount) {
    balances_.add(ctx, from, -amount);
    balances_.add(ctx, to, amount);
  }

  /// Canonical digest of all persistent state; the block's state root.
  [[nodiscard]] util::Hash256 state_root() const {
    StateHasher hasher;
    contracts_.hash_state(hasher);
    balances_.hash_state(hasher, "__world/balances");
    return hasher.finish();
  }

  /// Copy-on-write fork of the whole world: an independent replica with
  /// an identical state_root() by construction, built in O(contracts) —
  /// every boosted collection shares its committed pages with the
  /// original, and the first write to a page on either side detaches a
  /// private copy of just that page. Call between blocks only (no
  /// speculative action may be live). This is how one genesis state
  /// serves both pipeline stages and how the depth-k ring affords a
  /// frozen boundary snapshot per in-flight block: the miner keeps
  /// mutating its world (peeling off the dirty pages) while validators,
  /// re-org recovery and read serving share the frozen rest.
  [[nodiscard]] std::unique_ptr<World> fork() const {
    auto replica = std::make_unique<World>(arena_);
    replica->contracts_ = contracts_.fork();
    replica->balances_.fork_state_from(balances_);
    return replica;
  }

  /// The arena this lineage allocates from (null = heap baseline).
  [[nodiscard]] const ArenaHandle& arena() const noexcept { return arena_; }

  /// Allocator counters for this lineage (all-zero when the arena is
  /// off) — surfaced through MinerStats/NodeStats and the bench JSON.
  [[nodiscard]] ArenaStats arena_stats() const noexcept {
    return arena_ ? arena_->stats() : ArenaStats{};
  }

 private:
  ArenaHandle arena_;
  ContractRegistry contracts_;
  BoostedCounterMap<Address> balances_;
};

/// An immutable world state frozen at a block boundary: a COW fork taken
/// at construction plus its (lazily computed) state root. Copying the
/// handle shares the frozen fork; materialize() mints fresh mutable
/// replicas — another fork, so both freezing and materializing cost
/// O(contracts), not O(state). The only O(state) work left on this path
/// is hashing, and state_root() does it at most once per snapshot, on
/// first demand (or never, when the caller seeds a known root).
///
/// This is the seam deeper pipelining builds on: the depth-k validation
/// ring keeps one snapshot per in-flight block to re-derive a validator
/// world after a re-org, and mid-block read serving answers queries from
/// the last snapshot while the miner's world is in flux.
class WorldSnapshot {
 public:
  /// An empty handle (valid() == false). Lets snapshot slots — a ring
  /// entry whose pipeline runs with recovery disabled, a moved-from
  /// handle — exist without a frozen world behind them.
  WorldSnapshot() = default;

  /// Freezes `world`'s current state as a shared-page fork. The original
  /// is untouched and may keep advancing (detaching the pages it dirties);
  /// the snapshot's state never changes.
  explicit WorldSnapshot(const World& world) : frozen_(std::make_shared<Frozen>(world.fork())) {}

  /// Freezes `world` and seeds the root cache with `known_root` — for
  /// callers that froze at a boundary whose root is already computed and
  /// verified (the node snapshots right after a block carrying that very
  /// root). Skips the O(state) hash entirely.
  WorldSnapshot(const World& world, const util::Hash256& known_root)
      : frozen_(std::make_shared<Frozen>(world.fork())) {
    std::call_once(frozen_->once, [&] { frozen_->root = known_root; });
  }

  /// False for a default-constructed (or moved-from) handle. world() and
  /// materialize() require valid().
  [[nodiscard]] bool valid() const noexcept { return frozen_ != nullptr; }

  /// How many handles share this frozen state (0 for an empty handle) —
  /// the ring-occupancy diagnostic: a depth-k pipeline holds at most one
  /// live boundary per in-flight block.
  [[nodiscard]] long use_count() const noexcept { return frozen_.use_count(); }

  /// The frozen state, for read-only serving. Throws std::logic_error on
  /// an empty handle — dereferencing a snapshot that never froze a world
  /// is a caller bug and must fail loudly, not as UB.
  [[nodiscard]] const World& world() const {
    require_valid("world()");
    return *frozen_->world;
  }

  /// The state root at the moment the snapshot was taken (zero hash for
  /// an empty handle). Computed on first call and cached in the shared
  /// frozen state; safe to race from handles sharing one snapshot.
  [[nodiscard]] const util::Hash256& state_root() const {
    static const util::Hash256 kZeroRoot{};
    if (!valid()) return kZeroRoot;
    std::call_once(frozen_->once, [this] { frozen_->root = frozen_->world->state_root(); });
    return frozen_->root;
  }

  /// A fresh mutable world replica of the frozen state — how a validator
  /// (or a re-org recovery path) gets a private copy to execute against.
  /// Concurrent materialize() calls on handles sharing one frozen world
  /// are safe: forking only reads the immutable shared pages (and bumps
  /// their refcounts), it never mutates them. Throws std::logic_error on
  /// an empty handle (see world()).
  [[nodiscard]] std::unique_ptr<World> materialize() const {
    require_valid("materialize()");
    return frozen_->world->fork();
  }

 private:
  void require_valid(const char* op) const {
    if (frozen_ == nullptr) {
      throw std::logic_error(std::string("WorldSnapshot::") + op +
                             " on an invalid handle (default-constructed or moved-from); "
                             "check valid() first");
    }
  }

  struct Frozen {
    explicit Frozen(std::unique_ptr<World> w) : world(std::move(w)) {}
    std::unique_ptr<const World> world;
    mutable std::once_flag once;   ///< Guards the lazy root computation.
    mutable util::Hash256 root{};  ///< Valid once `once` has run.
  };

  std::shared_ptr<const Frozen> frozen_;
};

}  // namespace concord::vm
