#pragma once

#include "util/sha256.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/contract.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// The complete on-chain state a block executes against: the deployed
/// contracts plus the native account balances ("each block also includes
/// an explicit state capturing the cumulative effect of transactions in
/// prior blocks" — paper §2).
///
/// Balances are a BoostedCounterMap, so plain transfers between distinct
/// accounts commute and mine in parallel, while reads of a balance
/// serialize against payments touching it — the same fine-grained
/// semantics the contracts get.
class World {
 public:
  World() : balances_(stm::fnv1a64("__world/balances")) {}

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] ContractRegistry& contracts() noexcept { return contracts_; }
  [[nodiscard]] const ContractRegistry& contracts() const noexcept { return contracts_; }

  [[nodiscard]] BoostedCounterMap<Address>& balances() noexcept { return balances_; }
  [[nodiscard]] const BoostedCounterMap<Address>& balances() const noexcept { return balances_; }

  /// Transfers `amount` between accounts as two commutative increments.
  /// Overdraft protection is the caller's business (contracts check their
  /// own invariants; checking here would force a READ and serialize all
  /// payments from the same account — the classic boosting trade-off).
  void transfer(ExecContext& ctx, const Address& from, const Address& to, Amount amount) {
    balances_.add(ctx, from, -amount);
    balances_.add(ctx, to, amount);
  }

  /// Canonical digest of all persistent state; the block's state root.
  [[nodiscard]] util::Hash256 state_root() const {
    StateHasher hasher;
    contracts_.hash_state(hasher);
    balances_.hash_state(hasher, "__world/balances");
    return hasher.finish();
  }

 private:
  ContractRegistry contracts_;
  BoostedCounterMap<Address> balances_;
};

}  // namespace concord::vm
