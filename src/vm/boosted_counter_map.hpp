#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "vm/boosted_map.hpp"
#include "vm/codec.hpp"
#include "vm/cow.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/state_hasher.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// A boosted map from keys to integer totals where *absent ≡ 0*.
///
/// This is the abstract type behind `proposals[p].voteCount += weight`,
/// `pendingReturns[bidder] += bid` and account balances. Formalizing it as
/// "a total function from keys to integers, zero by default" is what makes
/// `add` genuinely commutative in the boosting sense: two adds to the same
/// key map to a shared INCREMENT-mode abstract lock and run concurrently,
/// and the inverse of add(k, d) is add(k, -d) — which commutes with other
/// in-flight adds, so aborts are sound even under lock sharing.
///
/// The zero-normalization invariant (no entry ever stores 0) makes the
/// physical representation a function of the abstract value, so state
/// roots are identical no matter which interleaving of adds, aborts and
/// retries produced them.
template <typename K>
class BoostedCounterMap {
 public:
  using Value = std::int64_t;

  explicit BoostedCounterMap(std::uint64_t space) : space_(space) {}

  BoostedCounterMap(const BoostedCounterMap&) = delete;
  BoostedCounterMap& operator=(const BoostedCounterMap&) = delete;

  // --- Transactional storage operations -------------------------------

  /// Reads the total for `key` (0 when no entry). READ mode — commutes
  /// with other reads, conflicts with add and set.
  [[nodiscard]] Value get(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kRead);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "counter.get");
    std::scoped_lock lk(mu_);
    const Value* value = data_.find(key);
    return value != nullptr ? *value : 0;
  }

  /// Reads the total for `key` while acquiring the lock in WRITE mode
  /// ("SELECT FOR UPDATE"); for read-then-overwrite sequences such as
  /// withdraw()'s read-balance-then-zero. See BoostedScalar::get_for_update.
  [[nodiscard]] Value get_for_update(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "counter.get_for_update");
    std::scoped_lock lk(mu_);
    const Value* value = data_.find(key);
    return value != nullptr ? *value : 0;
  }

  /// Adds `delta` to the total for `key`. INCREMENT mode — commutes with
  /// concurrent adds on the same key, so a block full of votes for the
  /// same proposal still mines in parallel.
  void add(ExecContext& ctx, const K& key, Value delta) {
    ctx.gas().charge(gas::kSinc);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kIncrement);
    ctx.on_data_access(lock_id(key), stm::LockMode::kIncrement, "counter.add");
    raw_add(key, delta);
    ctx.log_inverse([this, key, delta]() { raw_add(key, -delta); });
  }

  /// Overwrites the total for `key`. WRITE mode — conflicts with
  /// everything; used for non-commutative updates such as zeroing a
  /// pending return on withdrawal.
  void set(ExecContext& ctx, const K& key, Value value) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kWrite, "counter.set");
    Value old = 0;
    {
      std::scoped_lock lk(mu_);
      const Value* existing = data_.find(key);
      old = existing != nullptr ? *existing : 0;
      store_normalized(key, value);
    }
    ctx.log_inverse([this, key, old]() {
      std::scoped_lock lk(mu_);
      store_normalized(key, old);
    });
  }

  // --- Non-transactional access (genesis state, tests, inspection) ----

  /// Copy-on-write fork (World::fork): adopts `other`'s committed state
  /// as a shared-page replica in O(1); first mutation on either side
  /// detaches only the touched page. The zero-normalization invariant
  /// travels with the shared pages, so the fork's state root matches by
  /// construction.
  void fork_state_from(const BoostedCounterMap& other) {
    if (space_ != other.space_) {
      throw std::logic_error("BoostedCounterMap::fork_state_from: lock-space mismatch");
    }
    std::scoped_lock lk(mu_, other.mu_);
    data_ = other.data_.fork();
  }

  void raw_set(const K& key, Value value) {
    std::scoped_lock lk(mu_);
    store_normalized(key, value);
  }

  /// Routes future page allocations through `arena` (Contract::bind_arena
  /// forwards here for each field). See CowPages::set_arena.
  void set_arena(ArenaHandle arena) {
    std::scoped_lock lk(mu_);
    data_.set_arena(std::move(arena));
  }

  /// Pre-sizes the page directory for `expected_entries`, so seeding a
  /// large genesis state skips the doubling/rehash walk.
  void raw_reserve(std::size_t expected_entries) {
    std::scoped_lock lk(mu_);
    data_.reserve(expected_entries);
  }

  [[nodiscard]] Value raw_get(const K& key) const {
    std::scoped_lock lk(mu_);
    const Value* value = data_.find(key);
    return value != nullptr ? *value : 0;
  }

  /// Number of non-zero entries.
  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lk(mu_);
    return data_.size();
  }

  /// Sum over all entries (diagnostic; e.g. total supply conservation).
  [[nodiscard]] Value raw_total() const {
    std::scoped_lock lk(mu_);
    Value total = 0;
    data_.for_each([&total](const K&, Value value) { total += value; });
    return total;
  }

  void hash_state(StateHasher& hasher, std::string_view label) const {
    hasher.begin_section(label);
    std::scoped_lock lk(mu_);
    // All keys go into ONE flat buffer and the sort runs over an offset
    // index. The per-entry std::vector formulation costs a heap
    // allocation per key, which at million-account state is most of the
    // root computation. The digest is byte-identical: same entries,
    // same lexicographic key order, same put_* calls.
    util::ByteWriter keys;
    struct Item {
      std::size_t begin, end;
      Value value;
    };
    std::vector<Item> items;
    items.reserve(data_.size());
    data_.for_each([&keys, &items](const K& key, Value value) {
      const std::size_t begin = keys.size();
      encode_value(keys, key);
      items.push_back(Item{begin, keys.size(), value});
    });
    const std::uint8_t* buf = keys.bytes().data();
    std::sort(items.begin(), items.end(), [buf](const Item& a, const Item& b) {
      return std::lexicographical_compare(buf + a.begin, buf + a.end, buf + b.begin,
                                          buf + b.end);
    });
    hasher.put_u64(items.size());
    for (const Item& item : items) {
      hasher.put_bytes(std::span(buf + item.begin, item.end - item.begin));
      hasher.put_u64(static_cast<std::uint64_t>(item.value));
    }
  }

  [[nodiscard]] std::uint64_t space() const noexcept { return space_; }

 private:
  [[nodiscard]] stm::LockId lock_id(const K& key) const noexcept {
    return stm::LockId{space_, lock_key_of(key)};
  }

  /// Caller may or may not hold mu_ — this variant takes it.
  void raw_add(const K& key, Value delta) {
    std::scoped_lock lk(mu_);
    const Value* existing = data_.find(key);
    const Value current = existing != nullptr ? *existing : 0;
    store_normalized(key, current + delta);
  }

  /// Caller holds mu_. Maintains the no-zero-entries invariant.
  void store_normalized(const K& key, Value value) {
    if (value == 0) {
      data_.erase(key);
    } else {
      data_.insert_or_assign(key, value);
    }
  }

  std::uint64_t space_;
  mutable std::mutex mu_;
  CowPages<K, Value, StableKeyHash> data_;
};

}  // namespace concord::vm
