#pragma once

#include "vm/types.hpp"

namespace concord::vm {

/// The Solidity `msg` global: "a global variable containing data about the
/// contract's current invocation" (paper §2). A fresh MsgContext is pushed
/// for every external call; nested contract-to-contract calls push one
/// with `sender` set to the calling contract's address.
struct MsgContext {
  Address sender;    ///< Externally-owned account or calling contract.
  Address receiver;  ///< The contract being invoked.
  Amount value = 0;  ///< Currency attached to the call.
};

}  // namespace concord::vm
