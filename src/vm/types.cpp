#include "vm/types.hpp"

#include "util/bytes.hpp"

namespace concord::vm {

std::string Address::to_hex() const { return util::to_hex(bytes); }

}  // namespace concord::vm
