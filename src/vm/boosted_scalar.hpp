#pragma once

#include <concepts>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "vm/codec.hpp"
#include "vm/cow.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/state_hasher.hpp"

namespace concord::vm {

/// A single boosted state variable (Solidity scalar fields such as
/// SimpleAuction's `highestBid`). One abstract lock guards the whole
/// value; integral scalars additionally support a commutative add.
///
/// The paper's prototype folds scalars into "a single boosted mapping"
/// (§6); giving each its own lock space is the same abstraction with
/// clearer identity and identical conflict behaviour.
template <typename T>
class BoostedScalar {
 public:
  BoostedScalar(std::uint64_t space, T initial) : space_(space), value_(std::move(initial)) {}

  BoostedScalar(const BoostedScalar&) = delete;
  BoostedScalar& operator=(const BoostedScalar&) = delete;

  /// Reads the value. READ mode.
  [[nodiscard]] T get(ExecContext& ctx) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(), stm::LockMode::kRead);
    ctx.on_data_access(lock_id(), stm::LockMode::kRead, "scalar.get");
    std::scoped_lock lk(mu_);
    return value_.get();
  }

  /// Reads the value while acquiring the lock in WRITE mode — the
  /// database "SELECT FOR UPDATE" idiom. Contract code that reads a
  /// scalar it will (almost certainly) write afterwards must use this
  /// instead of get(): two transactions that both read-shared and then
  /// try to upgrade deadlock each other by construction, turning benign
  /// contention into abort storms. This also matches the paper's base
  /// design, where every abstract lock is mutually exclusive anyway.
  [[nodiscard]] T get_for_update(ExecContext& ctx) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(), stm::LockMode::kRead, "scalar.get_for_update");
    std::scoped_lock lk(mu_);
    return value_.get();
  }

  /// Replaces the value. WRITE mode.
  void set(ExecContext& ctx, T value) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(lock_id(), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(), stm::LockMode::kWrite, "scalar.set");
    T old;
    {
      std::scoped_lock lk(mu_);
      old = std::exchange(value_.mutable_ref(), std::move(value));
    }
    ctx.log_inverse([this, old = std::move(old)]() {
      std::scoped_lock lk(mu_);
      value_.set(old);
    });
  }

  /// Commutative add for integral scalars. INCREMENT mode.
  void add(ExecContext& ctx, T delta)
    requires std::integral<T>
  {
    ctx.gas().charge(gas::kSinc);
    ctx.on_storage_op(lock_id(), stm::LockMode::kIncrement);
    ctx.on_data_access(lock_id(), stm::LockMode::kIncrement, "scalar.add");
    {
      std::scoped_lock lk(mu_);
      value_.mutable_ref() += delta;
    }
    ctx.log_inverse([this, delta]() {
      std::scoped_lock lk(mu_);
      value_.mutable_ref() -= delta;
    });
  }

  // --- Non-transactional access ---------------------------------------

  /// Copy-on-write fork (World::fork): shares `other`'s boxed value; the
  /// first set() on either side detaches a private copy.
  void fork_state_from(const BoostedScalar& other) {
    if (space_ != other.space_) {
      throw std::logic_error("BoostedScalar::fork_state_from: lock-space mismatch");
    }
    std::scoped_lock lk(mu_, other.mu_);
    value_ = other.value_.fork();
  }

  [[nodiscard]] T raw_get() const {
    std::scoped_lock lk(mu_);
    return value_.get();
  }

  void raw_set(T value) {
    std::scoped_lock lk(mu_);
    value_.set(std::move(value));
  }

  /// Routes future detaches through `arena`. See CowBox::set_arena.
  void set_arena(ArenaHandle arena) {
    std::scoped_lock lk(mu_);
    value_.set_arena(std::move(arena));
  }

  void hash_state(StateHasher& hasher, std::string_view label) const {
    hasher.begin_section(label);
    std::scoped_lock lk(mu_);
    hasher.put_bytes(encoded_bytes(value_.get()));
  }

  [[nodiscard]] std::uint64_t space() const noexcept { return space_; }

 private:
  [[nodiscard]] stm::LockId lock_id() const noexcept { return stm::LockId{space_, 0}; }

  std::uint64_t space_;
  mutable std::mutex mu_;
  CowBox<T> value_;
};

}  // namespace concord::vm
