#pragma once

#include <cassert>
#include <functional>
#include <vector>

#include "stm/access_log.hpp"
#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "stm/runtime.hpp"
#include "stm/speculative_action.hpp"
#include "stm/undo_log.hpp"
#include "vm/errors.hpp"
#include "vm/gas.hpp"
#include "vm/msg.hpp"
#include "vm/trace.hpp"
#include "vm/types.hpp"

namespace concord::vm {

class World;

/// How a transaction is being executed. The same contract code runs under
/// all three — the mode only changes what a storage operation does before
/// touching data.
/// ConcordSan fault-injection seam (tests only — see the mutant contract
/// fixtures in detect_test): how the NEXT on_storage_op call should be
/// corrupted to simulate a contract that under-declares its abstract
/// locks. Production contracts never touch this; the member costs one
/// byte and its check folds into the detect-off fast path.
enum class DeclareFault : std::uint8_t {
  kNone = 0,
  /// Drop the declaration entirely: no lock acquired, nothing recorded —
  /// the "writing a balance without its key lock" mutant.
  kDrop,
  /// Weaken the declared mode to READ: the lock is acquired, but a
  /// physical write under it is a coverage violation.
  kWeakenToRead,
};

enum class ExecMode : std::uint8_t {
  /// Plain single-threaded execution (the paper's serial miner baseline
  /// and the serial validator). Storage ops go straight to data.
  kSerial,
  /// Speculative mining (paper §3): every storage op first acquires the
  /// abstract lock through the transaction's SpeculativeAction; inverses
  /// go to the action's undo log.
  kSpeculative,
  /// Deterministic replay (paper §4): no locks and no conflict detection —
  /// the fork-join schedule already serializes conflicting transactions —
  /// but each op appends to a thread-local TraceRecorder for the
  /// profile-equivalence check.
  kReplay,
  /// Read-only query serving (the MVCC read path): storage ops declaring
  /// READ are admitted without locks or traces — the world behind the
  /// context is a frozen snapshot nobody writes, so there is nothing to
  /// serialize against. Any non-READ declaration (and any logged
  /// inverse, as a backstop) throws ReadOnlyViolation before data is
  /// touched.
  kReadOnly,
};

/// Per-transaction execution environment handed to contract code.
///
/// Exactly one ExecContext exists per transaction *attempt*; it owns the
/// attempt's gas meter, its Solidity `msg` stack, and (in non-speculative
/// modes) the local undo log used to roll back reverts.
class ExecContext {
 public:
  /// Serial execution against `world`.
  static ExecContext serial(World& world, GasMeter meter) {
    return ExecContext(ExecMode::kSerial, world, meter);
  }

  /// Speculative execution: locks come from `rt`, undo goes to `action`.
  static ExecContext speculative(World& world, stm::BoostingRuntime& rt,
                                 stm::SpeculativeAction& action, GasMeter meter) {
    ExecContext ctx(ExecMode::kSpeculative, world, meter);
    ctx.runtime_ = &rt;
    ctx.action_ = &action;
    return ctx;
  }

  /// Deterministic replay: storage ops are recorded into `trace`.
  static ExecContext replay(World& world, TraceRecorder& trace, GasMeter meter) {
    ExecContext ctx(ExecMode::kReplay, world, meter);
    ctx.trace_ = &trace;
    return ctx;
  }

  /// Read-only query execution against a frozen snapshot's world (the
  /// MVCC read path; see core::run_query). The const_cast is sound: the
  /// contract/collection code paths all funnel mutations through
  /// on_storage_op (with a non-READ mode) before the physical write and
  /// through log_inverse right after it, and both hard-reject in this
  /// mode — the world is never written through a read-only context, it
  /// just travels through the mutable-reference plumbing the contracts
  /// share with every other mode.
  static ExecContext read_only(const World& world, GasMeter meter) {
    return ExecContext(ExecMode::kReadOnly, const_cast<World&>(world), meter);
  }

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;
  ExecContext(ExecContext&&) = default;

  [[nodiscard]] ExecMode mode() const noexcept { return mode_; }
  [[nodiscard]] World& world() const noexcept { return *world_; }
  [[nodiscard]] GasMeter& gas() noexcept { return gas_; }

  /// The innermost active speculative action, or nullptr outside
  /// speculative mode. Lazy storage uses it to register commit/abort
  /// hooks and to key its per-lineage write buffers.
  [[nodiscard]] stm::SpeculativeAction* speculative_action() const noexcept { return action_; }

  /// The innermost Solidity `msg` frame.
  [[nodiscard]] const MsgContext& msg() const {
    assert(!msg_stack_.empty() && "msg() outside of a call frame");
    return msg_stack_.back();
  }

  /// Ablation switch (bench_ablation_modes): treat every storage op as
  /// WRITE, i.e. the paper's strictly-mutual-exclusion abstract locks
  /// without the footnote-3 shared/commutative modes. Miner and validator
  /// must agree on this flag, since it changes published profiles.
  void set_exclusive_locks_only(bool on) noexcept { exclusive_locks_only_ = on; }
  [[nodiscard]] bool exclusive_locks_only() const noexcept { return exclusive_locks_only_; }

  /// Declares a storage operation on abstract lock `id` with `mode`.
  /// Speculative: acquires the lock (may block, may throw ConflictAbort).
  /// Replay: records the op. Serial: nothing. With an AccessRecorder
  /// attached (ConcordSan), the declaration is also logged so the lockset
  /// checker can verify later data accesses against it.
  void on_storage_op(const stm::LockId& id, stm::LockMode mode) {
    if (mode_ == ExecMode::kReadOnly) {
      // Judged on the DECLARED mode, before the ablation rewrite below:
      // exclusive_locks_only upgrades reads to writes for lock
      // acquisition, but a query that only reads must stay admissible
      // under it — there are no locks here to pick a mode for.
      if (mode != stm::LockMode::kRead) {
        throw ReadOnlyViolation(std::string("read-only query declared a ") +
                                std::string(stm::to_string(mode)) +
                                " storage op (state mutations are rejected on the read path)");
      }
      return;  // Nothing to acquire, trace or record: the world is frozen.
    }
    if (exclusive_locks_only_) mode = stm::LockMode::kWrite;
    if (declare_fault_ != DeclareFault::kNone) {
      const DeclareFault fault = declare_fault_;
      declare_fault_ = DeclareFault::kNone;
      if (fault == DeclareFault::kDrop) return;
      mode = stm::LockMode::kRead;  // kWeakenToRead
    }
    if (recorder_ != nullptr) recorder_->declare(id, mode);
    switch (mode_) {
      case ExecMode::kSpeculative:
        action_->acquire(runtime_->locks().get(id), mode);
        break;
      case ExecMode::kReplay:
        trace_->record(id, mode);
        break;
      case ExecMode::kSerial:
      case ExecMode::kReadOnly:  // Unreachable (early return above).
        break;
    }
  }

  /// Reports a physical data access the calling boosted collection is
  /// about to perform: lock `id` with operation class `mode`, labelled
  /// `op` (a static string such as "counter.add"). A no-op unless an
  /// AccessRecorder is attached — the detect-off hot path pays exactly
  /// one null-pointer test. The `mode` here is the operation's TRUE
  /// commutativity class (a get_for_update physically *reads*), which is
  /// what the lockset checker compares against the declared locks.
  void on_data_access(const stm::LockId& id, stm::LockMode mode, const char* op) {
    if (recorder_ != nullptr) recorder_->access(id, mode, op);
  }

  /// Attaches/detaches the ConcordSan access log for this attempt.
  /// nullptr (the default) disables recording entirely.
  void set_access_recorder(stm::AccessRecorder* recorder) noexcept { recorder_ = recorder; }
  [[nodiscard]] stm::AccessRecorder* access_recorder() const noexcept { return recorder_; }

  /// Arms the declare-fault seam: the next on_storage_op is corrupted per
  /// `fault`, then the seam disarms itself. Test fixtures only.
  void inject_declare_fault(DeclareFault fault) noexcept { declare_fault_ = fault; }

  /// Records the inverse of a mutation just applied. Routed to the
  /// speculative action's log or, in serial/replay, to the local log that
  /// backs revert rollback.
  void log_inverse(stm::UndoLog::Inverse inverse) {
    if (mode_ == ExecMode::kReadOnly) {
      // Backstop behind the on_storage_op gate: an inverse means a
      // physical write just happened, which only a collection that
      // skipped its declaration could reach in this mode.
      throw ReadOnlyViolation(
          "read-only query logged an undo inverse (undeclared state mutation)");
    }
    if (mode_ == ExecMode::kSpeculative) {
      action_->log_inverse(std::move(inverse));
    } else {
      local_undo_.record(std::move(inverse));
    }
  }

  /// Calls another contract as a nested action (paper §3). The callee runs
  /// with msg.sender set to the calling contract. Returns false when the
  /// callee reverted; its effects (only) have been undone and the caller
  /// may continue — "Aborting a child action does not abort the parent."
  /// ConflictAbort and OutOfGas propagate: they terminate the whole
  /// transaction attempt.
  bool nested_call(const Address& callee, Amount value,
                   const std::function<void(ExecContext&)>& body);

  /// Pushes/pops an outermost call frame; used by the transaction runner.
  void push_msg(const MsgContext& m) { msg_stack_.push_back(m); }
  void pop_msg() {
    assert(!msg_stack_.empty());
    msg_stack_.pop_back();
  }

  /// Rolls back every effect of this attempt (top-level revert handling in
  /// serial/replay modes — speculative rollback is the action's job).
  void rollback_local() {
    assert(mode_ != ExecMode::kSpeculative);
    local_undo_.replay_and_clear();
  }

  /// Discards the local undo log after a successful non-speculative
  /// attempt (its effects are final).
  void commit_local() {
    assert(mode_ != ExecMode::kSpeculative);
    local_undo_.clear();
  }

  /// Size of the non-speculative undo log (tests).
  [[nodiscard]] std::size_t local_undo_size() const noexcept { return local_undo_.size(); }

 private:
  ExecContext(ExecMode mode, World& world, GasMeter meter)
      : mode_(mode), world_(&world), gas_(meter) {}

  ExecMode mode_;
  World* world_;
  stm::BoostingRuntime* runtime_ = nullptr;   ///< Speculative only.
  stm::SpeculativeAction* action_ = nullptr;  ///< Innermost active action.
  TraceRecorder* trace_ = nullptr;            ///< Replay only.
  stm::AccessRecorder* recorder_ = nullptr;   ///< ConcordSan log (null = off).
  DeclareFault declare_fault_ = DeclareFault::kNone;  ///< Test seam, self-disarming.
  stm::UndoLog local_undo_;                   ///< Serial/replay revert support.
  GasMeter gas_;
  std::vector<MsgContext> msg_stack_;
  bool exclusive_locks_only_ = false;
};

}  // namespace concord::vm
