#pragma once

#include <stdexcept>
#include <string>

namespace concord::vm {

/// Solidity `throw`: "causes the contract's transient state and tentative
/// storage changes to be discarded" (paper §2). Raised by contract code;
/// the transaction runner catches it, rolls the transaction's effects
/// back, and records the transaction as reverted. Unlike
/// stm::ConflictAbort, a revert is a *semantic* outcome: it is part of the
/// block's meaning and must reproduce identically under validation, so it
/// is never retried.
class RevertError : public std::runtime_error {
 public:
  explicit RevertError(const std::string& reason) : std::runtime_error(reason) {}
};

/// The transaction exhausted its gas allowance ("If the charge exceeds
/// what the client is willing to pay, the computation is terminated and
/// rolled back" — paper §1). Handled exactly like RevertError except for
/// the recorded status.
class OutOfGas : public std::runtime_error {
 public:
  OutOfGas() : std::runtime_error("out of gas") {}
};

/// A transaction addressed a contract or selector that does not exist, or
/// carried malformed arguments. Deterministic, so treated as a revert.
class BadCall : public RevertError {
 public:
  explicit BadCall(const std::string& reason) : RevertError(reason) {}
};

/// A read-only query context (ExecMode::kReadOnly, the MVCC read path)
/// caught an attempted state mutation or a non-READ abstract-lock
/// declaration — a client queried a mutating selector, or a supposedly
/// view-only contract path writes. Thrown BEFORE the physical write
/// happens (every boosted collection declares through on_storage_op
/// first), so the frozen snapshot behind the query is untouched. A
/// logic_error rather than a RevertError on purpose: mutating through
/// the read path is API misuse, not an on-chain outcome — it never
/// enters a block, and the query layer maps it to its own status
/// instead of recording a revert.
class ReadOnlyViolation : public std::logic_error {
 public:
  explicit ReadOnlyViolation(const std::string& reason) : std::logic_error(reason) {}
};

}  // namespace concord::vm
