#pragma once

#include <stdexcept>
#include <string>

namespace concord::vm {

/// Solidity `throw`: "causes the contract's transient state and tentative
/// storage changes to be discarded" (paper §2). Raised by contract code;
/// the transaction runner catches it, rolls the transaction's effects
/// back, and records the transaction as reverted. Unlike
/// stm::ConflictAbort, a revert is a *semantic* outcome: it is part of the
/// block's meaning and must reproduce identically under validation, so it
/// is never retried.
class RevertError : public std::runtime_error {
 public:
  explicit RevertError(const std::string& reason) : std::runtime_error(reason) {}
};

/// The transaction exhausted its gas allowance ("If the charge exceeds
/// what the client is willing to pay, the computation is terminated and
/// rolled back" — paper §1). Handled exactly like RevertError except for
/// the recorded status.
class OutOfGas : public std::runtime_error {
 public:
  OutOfGas() : std::runtime_error("out of gas") {}
};

/// A transaction addressed a contract or selector that does not exist, or
/// carried malformed arguments. Deterministic, so treated as a revert.
class BadCall : public RevertError {
 public:
  explicit BadCall(const std::string& reason) : RevertError(reason) {}
};

}  // namespace concord::vm
