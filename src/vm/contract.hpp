#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "vm/arena.hpp"
#include "vm/exec_context.hpp"
#include "vm/state_hasher.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// One external or nested invocation of a contract function: selector plus
/// serialized arguments. The outermost Call of a transaction is derived
/// from the on-chain Transaction by the miner/validator.
struct Call {
  Selector selector = 0;
  std::span<const std::uint8_t> args;
};

/// Base class for smart contracts ("A smart contract resembles an object
/// in a programming language. It manages long-lived state... manipulated
/// by a set of functions" — paper §1).
///
/// Implementations own boosted storage fields, dispatch on Call::selector
/// in execute(), and fold their full persistent state into hash_state()
/// in a fixed field order.
class Contract {
 public:
  Contract(Address address, std::string name)
      : address_(address), name_(std::move(name)) {}

  virtual ~Contract() = default;
  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  [[nodiscard]] const Address& address() const noexcept { return address_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Executes one call against this contract. Must be deterministic given
  /// storage state and arguments; signals failure with RevertError.
  virtual void execute(const Call& call, ExecContext& ctx) = 0;

  /// Folds the contract's complete persistent state into `hasher`.
  virtual void hash_state(StateHasher& hasher) const = 0;

  /// Copy-on-write fork of this contract — address and construction
  /// parameters copied, every boosted field's committed state adopted as
  /// a shared-page replica (fork_state_from), so the fork is O(fields)
  /// regardless of state size and the first write on either side detaches
  /// only the touched page. Because lock spaces derive from (address,
  /// field name), a fork reproduces the original's conflict structure
  /// exactly, and hash_state() over the fork matches by construction.
  /// Called between blocks only (no speculative action may be live in
  /// this contract).
  [[nodiscard]] virtual std::unique_ptr<Contract> fork() const = 0;

  /// Routes the contract's COW storage through `arena` (see
  /// PageArena). Called by ContractRegistry::add when the registry is
  /// arena-backed; implementations forward to set_arena on each boosted
  /// field. Forked contracts inherit the arena with their shared pages
  /// (fork_state_from copies the handle), so only initial deployment
  /// needs this hook. The default is a no-op: a contract that doesn't
  /// override simply keeps heap-backed storage, which is correct, just
  /// unpooled.
  virtual void bind_arena(const ArenaHandle& arena) { (void)arena; }

 protected:
  /// Deterministic abstract-lock space for a state variable of this
  /// contract: miners and validators on different machines derive the
  /// same value from (contract address, field name).
  [[nodiscard]] std::uint64_t field_space(std::string_view field) const noexcept {
    return stm::mix64(address_.stable_hash() ^ stm::fnv1a64(field));
  }

 private:
  Address address_;
  std::string name_;
};

/// Owning registry of all deployed contracts, addressable by Address.
/// Iteration order is the address order, which keeps state hashing
/// deterministic.
class ContractRegistry {
 public:
  /// Deploys a contract; the registry takes ownership. Throws BadCall if
  /// the address is already taken.
  Contract& add(std::unique_ptr<Contract> contract);

  /// Returns the contract at `address` or nullptr.
  [[nodiscard]] Contract* find(const Address& address) const;

  /// Returns the contract at `address`; throws BadCall when absent.
  [[nodiscard]] Contract& at(const Address& address) const;

  /// Typed accessor for examples/tests: `registry.as<Ballot>(addr)`.
  template <typename T>
  [[nodiscard]] T& as(const Address& address) const {
    return dynamic_cast<T&>(at(address));
  }

  [[nodiscard]] std::size_t size() const noexcept { return contracts_.size(); }

  /// Forks the registry: every contract COW-forked, same address set.
  /// O(contracts), independent of how much state they hold. The arena
  /// handle travels with the fork (both through the contracts' shared
  /// pages and for contracts deployed into the replica later).
  [[nodiscard]] ContractRegistry fork() const;

  /// Arena for contract storage: every contract already deployed is
  /// rebound, and every future add() binds on deployment. World's
  /// constructor calls this before genesis seeding.
  void set_arena(ArenaHandle arena);

  [[nodiscard]] const ArenaHandle& arena() const noexcept { return arena_; }

  /// Folds every contract's state, in address order.
  void hash_state(StateHasher& hasher) const;

 private:
  std::map<Address, std::unique_ptr<Contract>> contracts_;
  ArenaHandle arena_;
};

}  // namespace concord::vm
