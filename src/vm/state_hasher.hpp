#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace concord::vm {

/// Accumulates a deterministic digest of the world's persistent state (the
/// "state root"). Contracts fold their fields in a fixed order; map-like
/// storage sorts its entries by encoded key first. Ethereum uses a Merkle
/// Patricia trie for incremental proofs; a flat SHA-256 over a canonical
/// serialization gives the property the paper actually relies on —
/// validators can compare "the block's initial and final states" — without
/// the trie machinery, which is orthogonal to the concurrency scheme.
class StateHasher {
 public:
  /// Starts a named section (contract address, field name); the label is
  /// folded into the digest so that structurally different states cannot
  /// collide by concatenation.
  void begin_section(std::string_view label) {
    writer_.put_string(label);
  }

  void put_bytes(std::span<const std::uint8_t> bytes) { writer_.put_bytes(bytes); }
  void put_u64(std::uint64_t v) { writer_.put_varint(v); }

  /// Finishes and returns the state root.
  [[nodiscard]] util::Hash256 finish() const {
    return util::sha256(std::span<const std::uint8_t>(writer_.bytes()));
  }

 private:
  util::ByteWriter writer_;
};

}  // namespace concord::vm
