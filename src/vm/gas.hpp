#pragma once

#include <cstdint>

#include "util/cycle_burner.hpp"
#include "vm/errors.hpp"

namespace concord::vm {

/// Gas schedule. The absolute values are round numbers in the spirit of
/// the EVM's (reads cheaper than writes, a per-call base cost); we do not
/// model refunds or the cold/warm distinction, which postdate the paper.
namespace gas {
/// Charged on entry to every transaction (dispatch, signature-ish work).
inline constexpr std::uint64_t kTxBase = 1'000;
/// Storage read (mapping lookup, scalar read).
inline constexpr std::uint64_t kSload = 800;
/// Storage write (mapping bind/erase, scalar store).
inline constexpr std::uint64_t kSstore = 1'600;
/// Commutative storage increment.
inline constexpr std::uint64_t kSinc = 1'600;
/// One unit of plain computation; contract bodies charge multiples.
inline constexpr std::uint64_t kStep = 1;
/// Extra cost of a nested contract-to-contract call.
inline constexpr std::uint64_t kCallBase = 700;
/// Default per-transaction gas limit used by workloads; generous enough
/// that only gas-exhaustion tests hit it.
inline constexpr std::uint64_t kDefaultTxGasLimit = 10'000'000;
}  // namespace gas

/// Tracks and *physically pays for* a transaction's gas.
///
/// Every charge burns a calibrated number of CPU iterations so that
/// execution time is proportional to gas used. This is the substitution
/// (DESIGN.md §2) for the paper's JVM interpretation cost: it restores the
/// work-to-synchronization ratio that shapes the Figure 1 speedup curves.
/// `nanos_per_gas == 0` disables burning (unit tests that only check
/// accounting).
class GasMeter {
 public:
  /// Default wall-clock weight of one unit of gas. With the schedule
  /// above, a typical benchmark transaction (base + a handful of storage
  /// operations + a few thousand compute steps) costs 60–120 µs, matching
  /// the per-transaction latency regime of the paper's JVM prototype.
  static constexpr double kDefaultNanosPerGas = 10.0;

  GasMeter(std::uint64_t limit, double nanos_per_gas) noexcept
      : limit_(limit),
        iterations_per_gas_(
            nanos_per_gas <= 0.0
                ? 0.0
                : nanos_per_gas * 1e-3 *
                      static_cast<double>(util::iterations_per_microsecond())) {}

  explicit GasMeter(std::uint64_t limit) noexcept : GasMeter(limit, kDefaultNanosPerGas) {}

  /// Consumes `amount` gas, burning the corresponding CPU time. Throws
  /// OutOfGas when the limit would be exceeded (the charge is applied
  /// first, as in Ethereum: a failing transaction consumes all gas it
  /// attempted to use).
  void charge(std::uint64_t amount) {
    used_ += amount;
    if (iterations_per_gas_ > 0.0) {
      carry_ += static_cast<double>(amount) * iterations_per_gas_;
      if (carry_ >= 1.0) {
        const auto iterations = static_cast<std::uint64_t>(carry_);
        carry_ -= static_cast<double>(iterations);
        sink_ ^= util::burn_iterations(iterations);
      }
    }
    if (used_ > limit_) throw OutOfGas{};
  }

  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return used_ >= limit_ ? 0 : limit_ - used_;
  }

  /// Accumulated burner output; read by harnesses to keep the optimizer
  /// honest about the synthetic work.
  [[nodiscard]] std::uint64_t sink() const noexcept { return sink_; }

 private:
  std::uint64_t limit_ = 0;
  std::uint64_t used_ = 0;
  double iterations_per_gas_ = 0.0;
  double carry_ = 0.0;
  std::uint64_t sink_ = 0;
};

}  // namespace concord::vm
