#pragma once

#include <algorithm>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "vm/codec.hpp"
#include "vm/cow.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/state_hasher.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// Hasher funnelling all supported key types through the deterministic
/// lock_key_of overloads (std::hash is implementation-defined; we use one
/// hash function everywhere so behaviour is identical across hosts).
struct StableKeyHash {
  template <typename K>
  [[nodiscard]] std::size_t operator()(const K& k) const noexcept {
    return static_cast<std::size_t>(lock_key_of(k));
  }
};

/// The paper's boosted hashtable: "Solidity mapping objects are
/// implemented as boosted hashtables, where key values are used to index
/// abstract locks" (§6).
///
/// Each transactional operation (1) charges gas, (2) declares itself to
/// the ExecContext — which acquires the per-key abstract lock when mining
/// speculatively — then (3) applies to the underlying table under a short
/// internal mutex (the abstract lock provides *logical* isolation; the
/// mutex protects the *physical* store, e.g. against a concurrent page
/// detach), and (4) logs its inverse for rollback. Between (2) and (3)
/// the operation also reports its physical access class to ConcordSan
/// (ctx.on_data_access — a no-op unless detection is on), which is what
/// lets the lockset checker catch a declaration that went missing or was
/// too weak for the data touch that followed.
///
/// The physical store is a CowPages: committed state lives in immutable
/// pages shared with every fork of this map (fork_state_from), and a
/// write detaches a private copy of just the page it touches. Distinct
/// forks need no cross-instance locking — shared pages are never mutated
/// in place.
///
/// K must be one of the lock_key_of-supported key types; V must be
/// encodable (see codec.hpp) and copyable (old values are captured by
/// inverses).
template <typename K, typename V>
class BoostedMap {
 public:
  /// `space` is the abstract-lock space, normally Contract::field_space().
  explicit BoostedMap(std::uint64_t space) : space_(space) {}

  BoostedMap(const BoostedMap&) = delete;
  BoostedMap& operator=(const BoostedMap&) = delete;

  // --- Transactional storage operations -------------------------------

  /// Reads the value bound to `key`. READ mode: lookups of distinct keys
  /// commute, and so do concurrent lookups of the same key.
  [[nodiscard]] std::optional<V> get(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kRead);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "map.get");
    std::scoped_lock lk(mu_);
    const V* value = data_.find(key);
    return value != nullptr ? std::optional<V>(*value) : std::nullopt;
  }

  /// Reads the value bound to `key`, or `fallback` when unbound. This is
  /// Solidity's mapping semantics, where every key implicitly maps to a
  /// default-constructed value.
  [[nodiscard]] V get_or(ExecContext& ctx, const K& key, V fallback) const {
    auto v = get(ctx, key);
    return v ? std::move(*v) : std::move(fallback);
  }

  /// Reads the value bound to `key` while acquiring the lock in WRITE
  /// mode ("SELECT FOR UPDATE"). Use when the transaction will write the
  /// same key afterwards; see BoostedScalar::get_for_update for why
  /// read-then-upgrade is an anti-pattern under contention.
  [[nodiscard]] std::optional<V> get_for_update(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "map.get_for_update");
    std::scoped_lock lk(mu_);
    const V* value = data_.find(key);
    return value != nullptr ? std::optional<V>(*value) : std::nullopt;
  }

  [[nodiscard]] bool contains(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kRead);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "map.contains");
    std::scoped_lock lk(mu_);
    return data_.contains(key);
  }

  /// Binds `key` to `value`. WRITE mode: conflicts with everything on the
  /// same key. The inverse restores the previous binding (or unbinds).
  void put(ExecContext& ctx, const K& key, V value) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kWrite, "map.put");
    std::optional<V> old;
    {
      std::scoped_lock lk(mu_);
      const V* existing = data_.find(key);
      if (existing != nullptr) old = *existing;
      data_.insert_or_assign(key, std::move(value));
    }
    ctx.log_inverse([this, key, old = std::move(old)]() {
      std::scoped_lock lk(mu_);
      if (old) {
        data_.insert_or_assign(key, *old);
      } else {
        data_.erase(key);
      }
    });
  }

  /// Removes the binding for `key`; returns whether one existed. WRITE
  /// mode ("binding Alice's address to a vote of 42 ... does not commute
  /// when deleting Alice's vote" — paper §3).
  bool erase(ExecContext& ctx, const K& key) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kWrite, "map.erase");
    std::optional<V> old;
    {
      std::scoped_lock lk(mu_);
      const V* existing = data_.find(key);
      if (existing == nullptr) return false;
      old = *existing;
      data_.erase(key);
    }
    ctx.log_inverse([this, key, old = std::move(old)]() {
      std::scoped_lock lk(mu_);
      data_.insert_or_assign(key, *old);
    });
    return true;
  }

  /// Reads, transforms and writes back the value at `key` in one WRITE
  /// operation (one gas charge for load + store; one lock acquisition).
  /// `fn` receives a mutable reference to the value, inserting `fallback`
  /// first when the key is unbound. This is how struct-valued mappings
  /// update a single member (e.g. `voters[msg.sender].voted = true`).
  template <typename Fn>
  void update(ExecContext& ctx, const K& key, V fallback, Fn&& fn) {
    ctx.gas().charge(gas::kSload + gas::kSstore);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kWrite, "map.update");
    std::optional<V> old;
    {
      std::scoped_lock lk(mu_);
      bool inserted = false;
      V& slot = data_.get_or_emplace(key, std::move(fallback), &inserted);
      if (!inserted) old = slot;
      fn(slot);
    }
    ctx.log_inverse([this, key, old = std::move(old)]() {
      std::scoped_lock lk(mu_);
      if (old) {
        data_.insert_or_assign(key, *old);
      } else {
        data_.erase(key);
      }
    });
  }

  // --- Non-transactional access (genesis state, tests, inspection) ----

  /// Copy-on-write fork (World::fork): adopts `other`'s committed state
  /// as a shared-page replica in O(1). Neither side observes the other's
  /// later writes — the first mutation on either side detaches only the
  /// touched page. Both maps must have been built over the same lock
  /// space, so forked state keeps its conflict structure by construction.
  void fork_state_from(const BoostedMap& other) {
    if (space_ != other.space_) {
      throw std::logic_error("BoostedMap::fork_state_from: lock-space mismatch");
    }
    std::scoped_lock lk(mu_, other.mu_);
    data_ = other.data_.fork();
  }

  void raw_put(const K& key, V value) {
    std::scoped_lock lk(mu_);
    data_.insert_or_assign(key, std::move(value));
  }

  /// Routes future page allocations through `arena` (Contract::bind_arena
  /// forwards here for each field). See CowPages::set_arena.
  void set_arena(ArenaHandle arena) {
    std::scoped_lock lk(mu_);
    data_.set_arena(std::move(arena));
  }

  /// Pre-sizes the page directory for `expected_entries`, so seeding a
  /// large genesis state skips the doubling/rehash walk.
  void raw_reserve(std::size_t expected_entries) {
    std::scoped_lock lk(mu_);
    data_.reserve(expected_entries);
  }

  [[nodiscard]] std::optional<V> raw_get(const K& key) const {
    std::scoped_lock lk(mu_);
    const V* value = data_.find(key);
    return value != nullptr ? std::optional<V>(*value) : std::nullopt;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lk(mu_);
    return data_.size();
  }

  /// Folds every entry into the state root, sorted by encoded key so the
  /// digest is independent of hash-table iteration order.
  void hash_state(StateHasher& hasher, std::string_view label) const {
    hasher.begin_section(label);
    std::scoped_lock lk(mu_);
    // Keys and values encode into ONE flat buffer; the sort runs over an
    // offset index, keyed on the key bytes only (as before). This avoids
    // two heap allocations per entry — the dominant cost of hashing
    // million-entry state. Digest bytes are unchanged.
    util::ByteWriter flat;
    struct Item {
      std::size_t key_begin, key_end, value_end;
    };
    std::vector<Item> items;
    items.reserve(data_.size());
    data_.for_each([&flat, &items](const K& key, const V& value) {
      const std::size_t key_begin = flat.size();
      encode_value(flat, key);
      const std::size_t key_end = flat.size();
      encode_value(flat, value);
      items.push_back(Item{key_begin, key_end, flat.size()});
    });
    const std::uint8_t* buf = flat.bytes().data();
    std::sort(items.begin(), items.end(), [buf](const Item& a, const Item& b) {
      return std::lexicographical_compare(buf + a.key_begin, buf + a.key_end,
                                          buf + b.key_begin, buf + b.key_end);
    });
    hasher.put_u64(items.size());
    for (const Item& item : items) {
      hasher.put_bytes(std::span(buf + item.key_begin, item.key_end - item.key_begin));
      hasher.put_bytes(std::span(buf + item.key_end, item.value_end - item.key_end));
    }
  }

  [[nodiscard]] std::uint64_t space() const noexcept { return space_; }

 private:
  [[nodiscard]] stm::LockId lock_id(const K& key) const noexcept {
    return stm::LockId{space_, lock_key_of(key)};
  }

  std::uint64_t space_;
  mutable std::mutex mu_;
  CowPages<K, V, StableKeyHash> data_;
};

}  // namespace concord::vm
