#pragma once

#include <concepts>
#include <string>
#include <type_traits>

#include "util/bytes.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// Deterministic value encoding used for two purposes that must agree
/// byte-for-byte between miners and validators on different machines:
/// state-root hashing (every storage value is folded into the root) and
/// transaction-argument serialization.
///
/// Built-in overloads cover integers, bool, strings and Address; struct
/// values stored in boosted maps (e.g. Ballot's Voter) provide a member
/// `void encode(util::ByteWriter&) const`, which the generic overload
/// picks up.
template <typename T>
concept MemberEncodable = requires(const T& v, util::ByteWriter& w) {
  { v.encode(w) };
};

inline void encode_value(util::ByteWriter& w, bool v) { w.put_u8(v ? 1 : 0); }

template <std::unsigned_integral T>
  requires(!std::same_as<T, bool>)
void encode_value(util::ByteWriter& w, T v) {
  w.put_varint(static_cast<std::uint64_t>(v));
}

template <std::signed_integral T>
void encode_value(util::ByteWriter& w, T v) {
  // Zigzag so small negative values stay compact and encoding is bijective.
  const auto wide = static_cast<std::int64_t>(v);
  w.put_varint((static_cast<std::uint64_t>(wide) << 1) ^
               static_cast<std::uint64_t>(wide >> 63));
}

inline void encode_value(util::ByteWriter& w, const std::string& v) { w.put_string(v); }

inline void encode_value(util::ByteWriter& w, const Address& v) { w.put_raw(v.bytes); }

template <MemberEncodable T>
void encode_value(util::ByteWriter& w, const T& v) {
  v.encode(w);
}

template <typename T>
void encode_value(util::ByteWriter& w, const std::vector<T>& v) {
  w.put_varint(v.size());
  for (const T& item : v) encode_value(w, item);
}

/// Canonical byte-string form of a value, used to order map entries
/// deterministically when hashing state.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> encoded_bytes(const T& v) {
  util::ByteWriter w;
  encode_value(w, v);
  return std::move(w).take();
}

}  // namespace concord::vm
