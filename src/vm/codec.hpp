#pragma once

#include <algorithm>
#include <concepts>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// Deterministic value encoding used for two purposes that must agree
/// byte-for-byte between miners and validators on different machines:
/// state-root hashing (every storage value is folded into the root) and
/// transaction-argument serialization.
///
/// Built-in overloads cover integers, bool, strings and Address; struct
/// values stored in boosted maps (e.g. Ballot's Voter) provide a member
/// `void encode(util::ByteWriter&) const`, which the generic overload
/// picks up.
template <typename T>
concept MemberEncodable = requires(const T& v, util::ByteWriter& w) {
  { v.encode(w) };
};

inline void encode_value(util::ByteWriter& w, bool v) { w.put_u8(v ? 1 : 0); }

template <std::unsigned_integral T>
  requires(!std::same_as<T, bool>)
void encode_value(util::ByteWriter& w, T v) {
  w.put_varint(static_cast<std::uint64_t>(v));
}

template <std::signed_integral T>
void encode_value(util::ByteWriter& w, T v) {
  // Zigzag so small negative values stay compact and encoding is bijective.
  const auto wide = static_cast<std::int64_t>(v);
  w.put_varint((static_cast<std::uint64_t>(wide) << 1) ^
               static_cast<std::uint64_t>(wide >> 63));
}

inline void encode_value(util::ByteWriter& w, const std::string& v) { w.put_string(v); }

inline void encode_value(util::ByteWriter& w, const Address& v) { w.put_raw(v.bytes); }

template <MemberEncodable T>
void encode_value(util::ByteWriter& w, const T& v) {
  v.encode(w);
}

template <typename T>
void encode_value(util::ByteWriter& w, const std::vector<T>& v) {
  w.put_varint(v.size());
  for (const T& item : v) encode_value(w, item);
}

/// Canonical byte-string form of a value, used to order map entries
/// deterministically when hashing state.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> encoded_bytes(const T& v) {
  util::ByteWriter w;
  encode_value(w, v);
  return std::move(w).take();
}

/// Decode counterparts, exact inverses of encode_value over the same
/// ByteReader stream position. Every path rejects malformed input with
/// util::DecodeError instead of silently truncating or wrapping: the
/// bytes come from untrusted peers on the wire, and the net layer's
/// decode→re-encode byte-identity guarantee needs a bijection — a value
/// that decodes must re-encode to the exact bytes it came from.
template <typename T>
concept MemberDecodable = requires(util::ByteReader& r) {
  { T::decode(r) } -> std::same_as<T>;
};

inline void decode_value(util::ByteReader& r, bool& v) {
  const std::uint8_t byte = r.get_u8();
  if (byte > 1) throw util::DecodeError("bool byte out of range");
  v = byte != 0;
}

template <std::unsigned_integral T>
  requires(!std::same_as<T, bool>)
void decode_value(util::ByteReader& r, T& v) {
  const std::uint64_t wide = r.get_varint();
  if (wide > std::numeric_limits<T>::max()) {
    throw util::DecodeError("varint exceeds field width");
  }
  v = static_cast<T>(wide);
}

template <std::signed_integral T>
void decode_value(util::ByteReader& r, T& v) {
  const std::uint64_t zz = r.get_varint();
  const auto wide = static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  if (wide < std::numeric_limits<T>::min() || wide > std::numeric_limits<T>::max()) {
    throw util::DecodeError("zigzag varint exceeds field width");
  }
  v = static_cast<T>(wide);
}

inline void decode_value(util::ByteReader& r, std::string& v) { v = r.get_string(); }

inline void decode_value(util::ByteReader& r, Address& v) {
  const auto raw = r.get_raw(v.bytes.size());
  std::copy(raw.begin(), raw.end(), v.bytes.begin());
}

template <MemberDecodable T>
void decode_value(util::ByteReader& r, T& v) {
  v = T::decode(r);
}

template <typename T>
void decode_value(util::ByteReader& r, std::vector<T>& v) {
  // Element floor of 1 byte: every encode_value emits at least one byte,
  // so a forged count larger than the remaining input dies here instead
  // of in reserve().
  const std::uint64_t n = r.get_count(/*min_item_bytes=*/1);
  v.clear();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    T item{};
    decode_value(r, item);
    v.push_back(std::move(item));
  }
}

/// One-expression flavor for default-constructible values.
template <typename T>
[[nodiscard]] T decoded_value(util::ByteReader& r) {
  T v{};
  decode_value(r, v);
  return v;
}

}  // namespace concord::vm
