#include "vm/runner.hpp"

#include "vm/errors.hpp"
#include "vm/gas.hpp"

namespace concord::vm {

namespace {
/// Keeps the msg stack balanced across every exit path, including
/// ConflictAbort unwinding out of a speculative attempt.
class MsgFrame {
 public:
  MsgFrame(ExecContext& ctx, const MsgContext& msg) : ctx_(ctx) { ctx_.push_msg(msg); }
  ~MsgFrame() { ctx_.pop_msg(); }
  MsgFrame(const MsgFrame&) = delete;
  MsgFrame& operator=(const MsgFrame&) = delete;

 private:
  ExecContext& ctx_;
};
}  // namespace

TxStatus run_call(Contract& contract, const Call& call, const MsgContext& msg, ExecContext& ctx) {
  const MsgFrame frame(ctx, msg);
  const bool speculative = ctx.mode() == ExecMode::kSpeculative;
  try {
    ctx.gas().charge(gas::kTxBase);
    contract.execute(call, ctx);
    if (!speculative) ctx.commit_local();
    return TxStatus::kSuccess;
  } catch (const OutOfGas&) {
    if (!speculative) ctx.rollback_local();
    return TxStatus::kOutOfGas;
  } catch (const RevertError&) {
    if (!speculative) ctx.rollback_local();
    return TxStatus::kReverted;
  }
}

}  // namespace concord::vm
