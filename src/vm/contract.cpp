#include "vm/contract.hpp"

#include "vm/errors.hpp"

namespace concord::vm {

Contract& ContractRegistry::add(std::unique_ptr<Contract> contract) {
  const Address address = contract->address();
  if (arena_) contract->bind_arena(arena_);
  auto [it, inserted] = contracts_.try_emplace(address, std::move(contract));
  if (!inserted) throw BadCall("contract address already in use: " + address.to_hex());
  return *it->second;
}

void ContractRegistry::set_arena(ArenaHandle arena) {
  arena_ = std::move(arena);
  if (!arena_) return;
  for (const auto& [address, contract] : contracts_) contract->bind_arena(arena_);
}

Contract* ContractRegistry::find(const Address& address) const {
  const auto it = contracts_.find(address);
  return it != contracts_.end() ? it->second.get() : nullptr;
}

Contract& ContractRegistry::at(const Address& address) const {
  Contract* contract = find(address);
  if (contract == nullptr) throw BadCall("no contract at address " + address.to_hex());
  return *contract;
}

ContractRegistry ContractRegistry::fork() const {
  ContractRegistry replica;
  replica.arena_ = arena_;
  for (const auto& [address, contract] : contracts_) {
    replica.contracts_.emplace(address, contract->fork());
  }
  return replica;
}

void ContractRegistry::hash_state(StateHasher& hasher) const {
  hasher.begin_section("contracts");
  hasher.put_u64(contracts_.size());
  for (const auto& [address, contract] : contracts_) {
    hasher.begin_section(contract->name());
    hasher.put_bytes(address.bytes);
    contract->hash_state(hasher);
  }
}

}  // namespace concord::vm
