#include "vm/exec_context.hpp"

#include "vm/errors.hpp"

namespace concord::vm {

namespace {
/// Restores the innermost-action pointer and pops the callee msg frame on
/// every exit path from a nested call.
class NestedFrame {
 public:
  NestedFrame(ExecContext& ctx, stm::SpeculativeAction** slot, stm::SpeculativeAction* saved)
      : ctx_(ctx), slot_(slot), saved_(saved) {}
  ~NestedFrame() {
    if (slot_ != nullptr) *slot_ = saved_;
    ctx_.pop_msg();
  }
  NestedFrame(const NestedFrame&) = delete;
  NestedFrame& operator=(const NestedFrame&) = delete;

 private:
  ExecContext& ctx_;
  stm::SpeculativeAction** slot_;
  stm::SpeculativeAction* saved_;
};
}  // namespace

bool ExecContext::nested_call(const Address& callee, Amount value,
                              const std::function<void(ExecContext&)>& body) {
  gas_.charge(gas::kCallBase);
  push_msg(MsgContext{.sender = msg().receiver, .receiver = callee, .value = value});

  if (mode_ == ExecMode::kSpeculative) {
    // "When one smart contract calls another, the run-time system creates
    // a nested speculative action, which can commit or abort independently
    // of its parent."
    stm::SpeculativeAction child(*action_);
    const NestedFrame frame(*this, &action_, action_);
    action_ = &child;
    try {
      body(*this);
      child.commit_nested();
      return true;
    } catch (const RevertError&) {
      child.abort();
      return false;
    }
    // Other exceptions (ConflictAbort, OutOfGas) unwind through the
    // child's destructor, which aborts it — undoing its effects and
    // releasing its locks — before the frame guard restores the parent.
  }

  const NestedFrame frame(*this, nullptr, nullptr);
  const std::size_t mark = local_undo_.mark();
  try {
    body(*this);
    return true;
  } catch (const RevertError&) {
    local_undo_.replay_tail_and_discard(mark);
    return false;
  }
}

}  // namespace concord::vm
