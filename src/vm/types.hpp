#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "stm/lock_id.hpp"

namespace concord::vm {

/// A 160-bit account identifier, as in Ethereum ("The keys in this mapping
/// are of built-in type address, which uniquely identifies Ethereum
/// accounts (clients or other contracts)" — paper §2).
struct Address {
  std::array<std::uint8_t, 20> bytes{};

  friend auto operator<=>(const Address&, const Address&) = default;

  /// Deterministic test/workload factory: embeds `n` little-endian in the
  /// first 8 bytes and a salt in byte 8 so related addresses stay distinct.
  [[nodiscard]] static Address from_u64(std::uint64_t n, std::uint8_t salt = 0) noexcept {
    Address a;
    for (int i = 0; i < 8; ++i) a.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
    a.bytes[8] = salt;
    return a;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (const auto b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_hex() const;

  /// Deterministic 64-bit digest used for abstract-lock keys; never uses
  /// std::hash (implementation-defined and thus useless on the wire).
  [[nodiscard]] std::uint64_t stable_hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto b : bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// The zero address — used, as in Solidity, as "no address" (e.g. an unset
/// delegate).
inline constexpr Address kZeroAddress{};

/// In-process hasher for Address keys in std::unordered_map.
struct AddressHash {
  [[nodiscard]] std::size_t operator()(const Address& a) const noexcept {
    return static_cast<std::size_t>(a.stable_hash());
  }
};

/// Currency amount in the smallest unit (think wei). Signed so that the
/// commutative-increment storage class can represent debits as negative
/// deltas; contract logic enforces non-negativity where it matters.
using Amount = std::int64_t;

/// Function selector. Each contract declares an enum of selectors; the
/// value is stable and appears in serialized transactions.
using Selector = std::uint32_t;

/// Deterministic lock-key derivations for the supported map key types.
[[nodiscard]] inline std::uint64_t lock_key_of(std::uint64_t k) noexcept { return stm::mix64(k); }
[[nodiscard]] inline std::uint64_t lock_key_of(std::int64_t k) noexcept {
  return stm::mix64(static_cast<std::uint64_t>(k));
}
[[nodiscard]] inline std::uint64_t lock_key_of(std::uint32_t k) noexcept { return stm::mix64(k); }
[[nodiscard]] inline std::uint64_t lock_key_of(const Address& k) noexcept { return k.stable_hash(); }
[[nodiscard]] inline std::uint64_t lock_key_of(const std::string& k) noexcept {
  return stm::fnv1a64(k);
}

}  // namespace concord::vm
