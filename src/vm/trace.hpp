#pragma once

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "stm/lock_profile.hpp"

namespace concord::vm {

/// Thread-local record of the abstract locks one replayed transaction
/// *would* have acquired (paper §4: "the validator's virtual machine
/// records a trace of the abstract locks each thread would have acquired,
/// had it been executing speculatively. This trace is thread-local,
/// requiring no expensive inter-thread synchronization").
///
/// Repeated operations fold into the strongest mode per lock, mirroring
/// how a speculative action's holder entry upgrades in place — so a trace
/// is comparable 1:1 against a published LockProfile.
class TraceRecorder {
 public:
  void record(const stm::LockId& id, stm::LockMode mode) {
    auto [it, inserted] = footprint_.try_emplace(id, mode);
    if (!inserted) it->second = stm::combine(it->second, mode);
  }

  void clear() { footprint_.clear(); }

  [[nodiscard]] bool empty() const noexcept { return footprint_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return footprint_.size(); }

  /// Canonical (lock, mode) list, sorted by lock id.
  [[nodiscard]] std::vector<std::pair<stm::LockId, stm::LockMode>> canonical() const {
    std::vector<std::pair<stm::LockId, stm::LockMode>> out(footprint_.begin(), footprint_.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  /// True when this trace touches exactly the locks in `profile`, each in
  /// exactly the published mode. Counter values are not compared — the
  /// ordering they encode is enforced structurally by the fork-join
  /// program, and the state-root check catches order violations.
  [[nodiscard]] bool matches(const stm::LockProfile& profile) const {
    if (profile.entries.size() != footprint_.size()) return false;
    for (const auto& entry : profile.entries) {
      const auto it = footprint_.find(entry.lock);
      if (it == footprint_.end() || it->second != entry.mode) return false;
    }
    return true;
  }

 private:
  std::unordered_map<stm::LockId, stm::LockMode, stm::LockIdHash> footprint_;
};

}  // namespace concord::vm
